package hdpat

import (
	"io"
	"sync/atomic"

	"hdpat/internal/metrics"
	"hdpat/internal/runner"
	"hdpat/internal/trace"
)

// Option adjusts how Simulate, SimulateContext, RunBatch, Compare and
// CompareAll execute. Options compose left to right: later options override
// earlier ones where they conflict (WithSeed, WithOpsBudget) and accumulate
// where they don't (WithConfig, WithIOMMU).
type Option func(*runConfig)

// runConfig is the resolved option set for one call.
type runConfig struct {
	tweakCfg   []func(*Config)
	tweakIOMMU []func(*IOMMUConfig)
	opsBudget  *int
	seed       *int64
	maxCycles  uint64
	workers    int
	domains    *int
	routing    string
	progress   func(done, total int)
	monitor    *BatchMonitor
	perRun     func(i int) []Option

	metrics     *metrics.Registry
	attribution bool
	invariants  bool
	traceW      io.Writer
	traceFormat trace.Format
	// tracer, when set, overrides traceW with a pre-built (batch child)
	// tracer; internal — batch entry points install it per run.
	tracer *trace.Tracer
}

func newRunConfig(opts []Option) *runConfig {
	rc := &runConfig{}
	rc.apply(opts)
	return rc
}

func (rc *runConfig) apply(opts []Option) {
	for _, o := range opts {
		o(rc)
	}
}

// forRun resolves the option set for the i'th spec of a batch, folding in
// WithPerRun options. The clone deep-copies the hook slices so concurrent
// workers never share appendable backing arrays.
func (rc *runConfig) forRun(i int) *runConfig {
	if rc.perRun == nil {
		return rc
	}
	c := *rc
	c.tweakCfg = append([]func(*Config){}, rc.tweakCfg...)
	c.tweakIOMMU = append([]func(*IOMMUConfig){}, rc.tweakIOMMU...)
	c.perRun = nil // per-run options must not recurse
	c.apply(rc.perRun(i))
	return &c
}

// WithConfig registers a hook that adjusts the full system configuration
// after the scheme's defaults are applied — the general entry point for
// sensitivity sweeps (mesh size, HDPAT layers, cache geometry).
func WithConfig(f func(*Config)) Option {
	return func(rc *runConfig) {
		if f != nil {
			rc.tweakCfg = append(rc.tweakCfg, f)
		}
	}
}

// WithIOMMU registers a hook that adjusts the IOMMU parameters after the
// scheme's defaults (and any WithConfig hooks) are applied — prefetch
// degree, redirection table size, walker count. It replaces the old
// SimulateWithIOMMU entry point.
func WithIOMMU(f func(*IOMMUConfig)) Option {
	return func(rc *runConfig) {
		if f != nil {
			rc.tweakIOMMU = append(rc.tweakIOMMU, f)
		}
	}
}

// WithOpsBudget overrides RunSpec.OpsBudget for every run of the call
// (0 restores the simulator default).
func WithOpsBudget(n int) Option {
	return func(rc *runConfig) { rc.opsBudget = &n }
}

// WithSeed overrides RunSpec.Seed for every run of the call.
func WithSeed(seed int64) Option {
	return func(rc *runConfig) { rc.seed = &seed }
}

// WithMaxCycles overrides the runaway-simulation cycle limit
// (0 = the 200M-cycle default).
func WithMaxCycles(cycles uint64) Option {
	return func(rc *runConfig) { rc.maxCycles = cycles }
}

// WithWorkers bounds the number of simulations RunBatch and CompareAll run
// concurrently (<= 0 means GOMAXPROCS; 1 forces serial execution).
// Single-run calls ignore it.
func WithWorkers(n int) Option {
	return func(rc *runConfig) { rc.workers = n }
}

// WithDomains shards each simulation across n spatial mesh domains running
// on parallel goroutines, so a single run can use more than one core
// (1 = today's serial kernel, the default; 0 = one domain per available
// CPU, from GOMAXPROCS). Results are bit-identical to serial: domains
// execute conservative lookahead windows of one NoC hop latency and a
// deterministic barrier replay restores the serial event order (see
// docs/performance.md, "Domain decomposition"). Runs that attach observers
// (WithMetrics, WithTrace, WithAttribution, WithInvariants) fall back to
// serial automatically, as do the route/concentric/distributed ablations.
//
// Composition with WithWorkers: workers parallelise *across* runs of a
// batch, domains parallelise *within* each run. Their product is the peak
// goroutine demand, so when n > 1 the batch entry points cap workers at
// GOMAXPROCS / n (minimum 1) unless WithWorkers asked for less. Prefer
// WithWorkers for large batches (embarrassingly parallel, no barrier cost)
// and WithDomains when latency of a single large run matters.
func WithDomains(n int) Option {
	return func(rc *runConfig) { rc.domains = &n }
}

// WithRouting selects the NoC routing policy by name: "xy" (dimension-
// ordered, minimal — the default) or "deflect" (bufferless deflection: a
// contended productive output misroutes the loser onto a free port, with
// age-based priority as the livelock guard). Unknown names are rejected
// with a typed config validation error before the run starts. Deflection
// routing is not shardable; WithDomains falls back to serial under it.
func WithRouting(name string) Option {
	return func(rc *runConfig) { rc.routing = name }
}

// WithProgress registers a callback invoked after each run of a batch
// settles, with the number settled so far and the batch size. Calls are
// serialised and arrive from worker goroutines. Single-run calls ignore it.
func WithProgress(f func(done, total int)) Option {
	return func(rc *runConfig) { rc.progress = f }
}

// BatchSnapshot is a point-in-time view of a batch's task accounting: how
// many runs are waiting for a worker, executing right now, and settled.
// Counts are cumulative across every batch the monitored call executes.
type BatchSnapshot = runner.Snapshot

// BatchMonitor observes a batch from outside its goroutines: attach one
// with WithMonitor and poll Snapshot from any goroutine — a progress
// endpoint, a TUI ticker — while RunBatch or CompareAll executes. Unlike
// WithProgress, which pushes one callback per settled run, a monitor is
// pull-based and also distinguishes queued from in-flight runs. The zero
// value is ready to use; before the batch starts (and after a call that
// never attached it) Snapshot returns the zero BatchSnapshot.
type BatchMonitor struct {
	pool atomic.Pointer[runner.Pool]
}

// Snapshot reports the monitored batch's current task accounting. Safe to
// call concurrently with the batch; see BatchSnapshot for field semantics.
func (m *BatchMonitor) Snapshot() BatchSnapshot {
	if p := m.pool.Load(); p != nil {
		return p.Snapshot()
	}
	return BatchSnapshot{}
}

// WithMonitor attaches m to the call's batch engine so its Snapshot
// reflects the live queued/inflight/done counts. Batch entry points
// (RunBatch, CompareAll) install it when the batch starts; single-run calls
// ignore it. Reusing one monitor across sequential calls re-points it at
// each new batch; passing nil disables monitoring.
func WithMonitor(m *BatchMonitor) Option {
	return func(rc *runConfig) { rc.monitor = m }
}

// WithMetrics has every component of the simulated system report into reg:
// counters, gauges and log2 histograms under the sim.*, noc.*, tlb.*,
// iommu.*, gpm.*, migrate.* and run.* series documented in
// docs/observability.md. Single runs write into reg live (scrape it while
// the simulation executes via ServeMetrics); batch entry points give every
// run a fresh private registry — so concurrent runs never share series —
// and fold each run's final snapshot into reg as it settles, alongside the
// batch's own runner.* throughput series. Each run's snapshot also lands on
// its Result.Metrics. Passing nil disables metrics; so does omitting the
// option, at a cost of one branch per instrumented hot-path site.
func WithMetrics(reg *metrics.Registry) Option {
	return func(rc *runConfig) { rc.metrics = reg }
}

// WithAttribution attaches the per-request latency attribution ledger to
// every run of the call: trace spans are stitched into complete translation
// lifecycles at simulation time and reduced into per-stage cycle breakdowns
// (admission / pwq / walk / wire, with exact critical-path accounting and
// p50/p95/p99), a per-link NoC heatmap and sampled queue-depth series. The
// finished attribution lands on Result.Breakdown; comparisons expose the
// per-stage delta via ComparisonResult.BreakdownDiff. Attribution only
// observes — results are byte-identical with it on or off — and composes
// freely with WithMetrics and WithTrace.
func WithAttribution() Option {
	return func(rc *runConfig) { rc.attribution = true }
}

// WithInvariants attaches the simulation invariant checker to every run of
// the call. The checker rides the existing observation seams (request hook,
// trace sink, periodic sampler, link visitor) and audits the simulator's
// conservation laws: every issued request completes exactly once and is
// never double-completed, queues and walkers are quiescent at settle, every
// IOMMU submission terminates in exactly one outcome counter, NoC byte-hops
// match the traffic observed on links, link occupancy never exceeds elapsed
// time, per-request latency sums match the GPM counters, every remote
// translation returns the globally mapped frame, and no sampler window is
// lost. Violations come back as errors naming the invariant, request ID and
// cycle (match with errors.Is(err, ErrInvariant)); the Result is still
// returned alongside them. Checking only observes — results are
// byte-identical with it on or off — and composes freely with WithMetrics,
// WithAttribution and WithTrace. See docs/invariants.md for the catalogue.
func WithInvariants() Option {
	return func(rc *runConfig) { rc.invariants = true }
}

// WithTrace streams cycle-domain spans (IOMMU walks and queueing, NoC link
// hops, page migrations) to w as Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto. In a batch every run shares w, with events
// tagged by the run's submission index. Tracing only observes — a traced
// simulation is cycle-for-cycle identical to an untraced one — but emits
// one event per hop/walk, so expect large outputs on long runs. The stream
// is flushed and terminated when the call returns. Passing nil disables
// tracing.
func WithTrace(w io.Writer) Option {
	return func(rc *runConfig) { rc.traceW = w; rc.traceFormat = trace.Chrome }
}

// WithTraceJSONL is WithTrace emitting one compact self-contained JSON
// object per line instead of a Chrome trace array — the format to pick for
// programmatic consumption (grep, jq, stream processing).
func WithTraceJSONL(w io.Writer) Option {
	return func(rc *runConfig) { rc.traceW = w; rc.traceFormat = trace.JSONL }
}

// WithPerRun supplies extra options for individual runs of a batch: f is
// called with each spec's submission index and its returned options are
// applied on top of the batch-wide ones. This is how a sweep gives every
// grid cell its own configuration while still executing as one parallel
// batch. Only RunBatch honours it; CompareAll and single-run calls ignore
// it, and nested WithPerRun options are ignored.
func WithPerRun(f func(i int) []Option) Option {
	return func(rc *runConfig) { rc.perRun = f }
}
