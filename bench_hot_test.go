// Hot-path benchmarks: allocation and event-throughput measurements of the
// Compare path the experiments harness leans on. Unlike the paper-artifact
// benchmarks in bench_test.go these report allocs/op and events/sec, the
// two regression signals the bench-gate compares against results/bench.json
// (see docs/performance.md for the profiling workflow).
package hdpat_test

import (
	"testing"

	"hdpat"
)

// runCompareHot executes one baseline-vs-scheme comparison per iteration on
// the given wafer and reports kernel throughput alongside the standard
// allocation metrics.
func runCompareHot(b *testing.B, cfg hdpat.Config, scheme, bench string, extra ...hdpat.Option) {
	b.Helper()
	opts := append([]hdpat.Option{
		hdpat.WithOpsBudget(32), hdpat.WithSeed(3), hdpat.WithWorkers(1),
	}, extra...)
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := hdpat.Compare(cfg, scheme, bench, opts...)
		if err != nil {
			b.Fatal(err)
		}
		events += cmp.Baseline.Events + cmp.Result.Events
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// BenchmarkCompareHDPAT is the canonical hot path: the full scheme against
// the baseline, exercising GPM translation, the IOMMU walk/redirect/revisit
// machinery, concentric probes and every NoC hop in between.
func BenchmarkCompareHDPAT(b *testing.B) {
	runCompareHot(b, hdpat.DefaultConfig(), "hdpat", "PR")
}

// BenchmarkCompareBaseline isolates the naive path: every remote
// translation walks at the IOMMU, so the kernel and request pooling
// dominate; scheme-side probe traffic is absent.
func BenchmarkCompareBaseline(b *testing.B) {
	runCompareHot(b, hdpat.DefaultConfig(), "baseline", "SPMV")
}

// BenchmarkCompareHDPATD4 is the same comparison through the domain-sharded
// kernel (WithDomains(4)): identical results, with the window/barrier
// machinery and pooled (sync.Pool) request path in the loop. Against
// BenchmarkCompareHDPAT it measures the sharding speedup — or, on a
// single-CPU runner, the pure protocol overhead (see docs/performance.md,
// "Domain decomposition").
func BenchmarkCompareHDPATD4(b *testing.B) {
	runCompareHot(b, hdpat.DefaultConfig(), "hdpat", "PR", hdpat.WithDomains(4))
}

// BenchmarkCompareHDPATDeflect is the canonical comparison under the
// bufferless deflection router: every hop pays the policy's route call and
// contended hops pay the misroute probe, so against BenchmarkCompareHDPAT
// it prices the routing seam. Informational in the bench gate (like the D
// legs) so router tuning does not flake CI.
func BenchmarkCompareHDPATDeflect(b *testing.B) {
	runCompareHot(b, hdpat.DefaultConfig(), "hdpat", "PR", hdpat.WithRouting("deflect"))
}

// BenchmarkCompareHDPAT7x12 and its D4 twin repeat the comparison on the
// enlarged Fig 22 wafer, where windows are denser and domains better fed —
// the geometry sharding targets.
func BenchmarkCompareHDPAT7x12(b *testing.B) {
	runCompareHot(b, hdpat.Wafer7x12Config(), "hdpat", "PR")
}

func BenchmarkCompareHDPAT7x12D4(b *testing.B) {
	runCompareHot(b, hdpat.Wafer7x12Config(), "hdpat", "PR", hdpat.WithDomains(4))
}
